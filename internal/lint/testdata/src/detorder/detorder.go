// Package detorder exercises the detorder analyzer: map ranges in
// result-producing code are flagged unless key order cannot leak or the
// site is justified with //lint:nondeterministic-ok.
package detorder

// Flagged: the emitted string depends on map iteration order.
func Joined(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order is nondeterministic`
		out += k
	}
	return out
}

// Allowed: `for range` exposes no key, nothing order-dependent leaks.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Allowed: commutative reduction, justified by annotation.
func Sum(m map[string]int) int {
	n := 0
	//lint:nondeterministic-ok commutative integer sum, order cannot leak
	for _, v := range m {
		n += v
	}
	return n
}
