// Package detorder exercises the detorder analyzer: map ranges in
// result-producing code are flagged unless key order cannot leak or the
// site is justified with //lint:nondeterministic-ok.
package detorder

import "sort"

// Flagged: the emitted string depends on map iteration order.
func Joined(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order is nondeterministic`
		out += k
	}
	return out
}

// Allowed: `for range` exposes no key, nothing order-dependent leaks.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Allowed: commutative reduction, justified by annotation.
func Sum(m map[string]int) int {
	n := 0
	//lint:nondeterministic-ok commutative integer sum, order cannot leak
	for _, v := range m {
		n += v
	}
	return n
}

// Flagged: the failpoint-registry shape — picking "any" schedule from a
// name-keyed map makes chaos replays depend on map order.
func FirstSchedule(schedules map[string][]int) []int {
	for _, q := range schedules { // want `map iteration order is nondeterministic`
		if len(q) > 0 {
			return q
		}
	}
	return nil
}

// Flagged: the shard-coordinator shape — folding gathered replies in
// map order makes the float accumulation order depend on arrival/map
// order, breaking the bit-identical-tables contract.
func FoldReplies(byPart map[int][]float64) float64 {
	total := 0.0
	for _, counts := range byPart { // want `map iteration order is nondeterministic`
		for _, c := range counts {
			total += c
		}
	}
	return total
}

// Allowed: the partition-order twin — replies indexed by partition and
// folded in partition order, regardless of how they arrived.
func FoldRepliesOrdered(byPart map[int][]float64, parts int) float64 {
	total := 0.0
	for p := 0; p < parts; p++ {
		for _, c := range byPart[p] {
			total += c
		}
	}
	return total
}

// Allowed: the sorted-walk twin — the key-collection range is
// order-insensitive (the sort immediately follows) and says so.
func SortedSchedules(schedules map[string][]int) [][]int {
	keys := make([]string, 0, len(schedules))
	//lint:nondeterministic-ok keys are sorted before any use
	for k := range schedules {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, schedules[k])
	}
	return out
}

// Flagged: the wire-codec anti-pattern — serializing a map-keyed blob
// store in iteration order would make frames differ run to run, which
// breaks the replayable-schedule contract of the TCP transport.
func EncodeBlobs(blobs map[string][]byte) []byte {
	var out []byte
	for _, b := range blobs { // want `map iteration order is nondeterministic`
		out = append(out, b...)
	}
	return out
}

// Allowed: the shardworker idiom — desired incarnations as a slice
// indexed by partition, announced in partition order on every session.
func AnnounceDesired(desired [][]byte, send func([]byte)) {
	for part := range desired {
		if desired[part] != nil {
			send(desired[part])
		}
	}
}
