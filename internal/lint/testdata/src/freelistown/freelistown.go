// Package freelistown exercises the freelistown analyzer on
// bitset.FreeList ownership: no double-Put on one path, no Put after
// the value escaped into an emitted result.
package freelistown

import "twoview/internal/bitset"

type emitter struct {
	free bitset.FreeList
	out  []*bitset.Set
}

// Flagged: both arms of the branch fall through to the second Put.
func (e *emitter) Double(cond bool) {
	s := e.free.Get(64)
	if cond {
		e.free.Put(s)
	}
	e.free.Put(s) // want `double-Put`
}

// Flagged: s escaped into the emitted slice before the Put.
func (e *emitter) Emit() {
	s := e.free.Get(64)
	e.out = append(e.out, s)
	e.free.Put(s) // want `escaped into an emitted result`
}

// Allowed: the escaping path returns before the Put.
func (e *emitter) EmitOrRecycle(keep bool) {
	s := e.free.Get(64)
	if keep {
		e.out = append(e.out, s)
		return
	}
	e.free.Put(s)
}

// Allowed: reassignment between the Puts hands s a fresh value.
func (e *emitter) Reuse() {
	s := e.free.Get(64)
	e.free.Put(s)
	s = e.free.Get(128)
	e.free.Put(s)
}

// Allowed: a boolean guard the analysis cannot see through, justified
// by annotation (the ECLAT `retained` pattern).
func (e *emitter) Guarded(keep bool) {
	s := e.free.Get(64)
	retained := false
	if keep {
		e.out = append(e.out, s)
		retained = true
	}
	if !retained {
		//lint:freelistown-ok fixture: retained guards the hand-off
		e.free.Put(s)
	}
}
