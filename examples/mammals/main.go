// Mammals: the paper's §6.4 ecology scenario — presence records of
// European mammal species split into two views, where rules describe
// which combinations of species inhabit the same areas (e.g. "areas with
// the European Mole and the Red Fox typically also host the Harvest
// Mouse and the European Hare").
//
// The program synthesizes a dataset shaped like the mammal atlas data
// (95 vs 94 species), compares all three TRANSLATOR variants on it, and
// renders the SELECT(1) rule set as a Graphviz graph.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"twoview"
)

func main() {
	profile, err := twoview.ProfileByName("mammals")
	if err != nil {
		log.Fatal(err)
	}
	scaled := profile.Scaled(0.5)
	d, _, err := twoview.Generate(scaled)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("areas: %d, species: %d + %d\n\n", st.Size, st.ItemsL, st.ItemsR)

	ctx := context.Background()
	cands, _, err := twoview.MineCandidatesCapped(ctx, d, scaled.MinSupport, 100_000, twoview.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidate co-habitation patterns (minsup %d)\n\n",
		len(cands), scaled.MinSupport)

	var keep *twoview.Result
	for _, cfg := range []struct {
		name string
		run  func() (*twoview.Result, error)
	}{
		{"SELECT(1)", func() (*twoview.Result, error) {
			return twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
		}},
		{"SELECT(25)", func() (*twoview.Result, error) {
			return twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 25})
		}},
		{"GREEDY", func() (*twoview.Result, error) {
			return twoview.MineGreedy(ctx, d, cands, twoview.GreedyOptions{})
		}},
	} {
		res, err := cfg.run()
		if err != nil {
			log.Fatal(err)
		}
		m := twoview.Summarize(d, res)
		fmt.Printf("%-10s |T|=%-3d L%%=%-6.1f |C|%%=%-5.1f c+=%.2f  (%v)\n",
			cfg.name, m.NumRules, m.LPct, m.CorrPct, m.AvgConf, res.Runtime)
		if keep == nil {
			keep = res
		}
	}

	fmt.Println("\ntop co-habitation rules:")
	for _, rs := range twoview.TopRules(d, keep.Table, 5) {
		fmt.Printf("  %-55s supp=%-4d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
	}

	f, err := os.Create("mammals.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := twoview.WriteDot(f, d, keep.Table, "mammals"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote mammals.dot (render with: dot -Tsvg mammals.dot)")
}
