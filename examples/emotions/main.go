// Emotions: the scenario motivating the paper's introduction — music
// tracks described by audio features on one side and evoked emotions on
// the other. Which emotions are associated with which types of music?
//
// The program synthesizes a dataset shaped like the MULAN "Emotions"
// benchmark (430 audio-feature items vs 12 emotion labels, Table 1 of the
// paper), mines a translation table, and reads off the associations —
// the analogue of findings like "R&B songs are typically catchy" or
// "aggressive vocals come with high-energy songs".
package main

import (
	"context"
	"fmt"
	"log"

	"twoview"
)

func main() {
	profile, err := twoview.ProfileByName("emotions")
	if err != nil {
		log.Fatal(err)
	}
	// A half-scale dataset keeps this example snappy; boost the planted
	// associations' coverage so they stand clear of the wide, dense
	// feature space even after the candidate-support cap kicks in.
	profile = profile.Scaled(0.5)
	profile.CoverageMin, profile.CoverageMax = 0.35, 0.5
	d, planted, err := twoview.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("tracks: %d, audio features: %d, emotion labels: %d\n",
		st.Size, st.ItemsL, st.ItemsR)
	fmt.Printf("planted ground-truth associations: %d\n\n", len(planted))

	ctx := context.Background()
	cands, minsup, err := twoview.MineCandidatesCapped(ctx, d, profile.MinSupport, 100_000, twoview.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidate patterns (minsup %d)\n", len(cands), minsup)
	res, err := twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	m := twoview.Summarize(d, res)
	fmt.Printf("mined %d rules in %v (L%% = %.1f)\n\n", m.NumRules, res.Runtime, m.LPct)

	fmt.Println("strongest audio-feature ↔ emotion associations:")
	for _, rs := range twoview.TopRules(d, res.Table, 8) {
		fmt.Printf("  %-55s supp=%-4d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
	}

	// Interestingness measures for the strongest rule, the way an analyst
	// would sanity-check a finding.
	if res.Table.Size() > 0 {
		q := twoview.Quality(d, res.Table.Rules[0])
		fmt.Printf("\nstrongest rule: lift %.1f, leverage %+.3f, Jaccard %.2f\n",
			q.Lift, q.Leverage, q.Jaccard)
	}
	nBidir := 0
	for _, r := range res.Table.Rules {
		if r.Dir == twoview.Both {
			nBidir++
		}
	}
	fmt.Printf("%d of %d rules are bidirectional (music ⇔ emotion); the rest "+
		"are asymmetric\n", nBidir, res.Table.Size())
}
