// Quickstart: build the toy two-view dataset of Fig. 1 of the paper,
// mine a translation table with each of the three TRANSLATOR algorithms,
// and show the rules, the translation and the compression statistics.
package main

import (
	"context"
	"fmt"
	"log"

	"twoview"
)

func main() {
	// The toy dataset: five transactions over two small vocabularies.
	d, err := twoview.NewDataset(
		[]string{"A", "B", "C", "D", "E"},
		[]string{"K", "L", "P", "Q", "S", "U"},
	)
	if err != nil {
		log.Fatal(err)
	}
	rows := [][2][]int{
		{{0, 1}, {1, 5}},       // A B     | L U
		{{1, 2}, {2, 3, 4}},    //   B C   | P Q S
		{{2, 3}, {4}},          //     C D | S
		{{0, 1, 3}, {1, 3, 5}}, // A B D   | L Q U
		{{0, 1, 4}, {0, 1, 5}}, // A B   E | K L U
	}
	for _, r := range rows {
		if err := d.AddRow(r[0], r[1]); err != nil {
			log.Fatal(err)
		}
	}
	st := d.Stats()
	fmt.Printf("dataset: %d transactions, %d+%d items, densities %.2f/%.2f\n\n",
		st.Size, st.ItemsL, st.ItemsR, st.DensityL, st.DensityR)

	// TRANSLATOR-EXACT: parameter-free, optimal rule each iteration.
	ctx := context.Background()
	exact, err := twoview.MineExact(ctx, d, twoview.ExactOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TRANSLATOR-EXACT found:")
	printTable(d, exact)

	// TRANSLATOR-SELECT(1) and GREEDY work from closed frequent two-view
	// itemset candidates.
	cands, err := twoview.MineCandidates(ctx, d, 1, 0, twoview.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d candidate itemsets at minsup 1\n\n", len(cands))

	sel, err := twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TRANSLATOR-SELECT(1) found:")
	printTable(d, sel)

	greedy, err := twoview.MineGreedy(ctx, d, cands, twoview.GreedyOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTRANSLATOR-GREEDY found:")
	printTable(d, greedy)
}

func printTable(d *twoview.Dataset, res *twoview.Result) {
	for _, rs := range twoview.TopRules(d, res.Table, res.Table.Size()) {
		fmt.Printf("  %-40s supp=%d c+=%.2f\n", rs.Rule.Format(d), rs.Supp, rs.Conf)
	}
	m := twoview.Summarize(d, res)
	fmt.Printf("  => %d rules, L%% = %.1f, |C|%% = %.1f\n", m.NumRules, m.LPct, m.CorrPct)
}
