// Elections: the paper's §6.4 scenario — candidates in the 2011 Finnish
// parliamentary elections, with candidate properties (party, age,
// education) on one side and their answers to 30 multiple-choice
// questions on the other. Translation rules then read as "candidates of
// party P hold opinions O" — and the direction of each rule matters:
// a unidirectional rule means other candidates share those opinions too.
//
// This program synthesizes a dataset shaped like the election data
// (82 vs 867 items, density 0.061/0.034), mines a table, and prints the
// rules grouped by direction to showcase why having both unidirectional
// and bidirectional rules is useful.
package main

import (
	"context"
	"fmt"
	"log"

	"twoview"
)

func main() {
	profile, err := twoview.ProfileByName("elections")
	if err != nil {
		log.Fatal(err)
	}
	scaled := profile.Scaled(0.5)
	d, _, err := twoview.Generate(scaled)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("candidates: %d, profile items: %d, opinion items: %d\n\n",
		st.Size, st.ItemsL, st.ItemsR)

	ctx := context.Background()
	cands, _, err := twoview.MineCandidatesCapped(ctx, d, scaled.MinSupport, 100_000, twoview.ParallelOptions{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := twoview.MineSelect(ctx, d, cands, twoview.SelectOptions{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	m := twoview.Summarize(d, res)
	fmt.Printf("mined %d rules (L%% = %.1f, avg c+ = %.2f)\n\n",
		m.NumRules, m.LPct, m.AvgConf)

	byDir := map[twoview.Direction][]twoview.Rule{}
	for _, r := range res.Table.Rules {
		byDir[r.Dir] = append(byDir[r.Dir], r)
	}
	fmt.Printf("bidirectional rules (profile ⇔ opinions): %d\n", len(byDir[twoview.Both]))
	for _, r := range cap5(byDir[twoview.Both]) {
		fmt.Printf("  %s\n", r.Format(d))
	}
	fmt.Printf("\nprofile ⇒ opinions only (opinions also held by others): %d\n",
		len(byDir[twoview.Forward]))
	for _, r := range cap5(byDir[twoview.Forward]) {
		fmt.Printf("  %s\n", r.Format(d))
	}
	fmt.Printf("\nopinions ⇒ profile only: %d\n", len(byDir[twoview.Backward]))
	for _, r := range cap5(byDir[twoview.Backward]) {
		fmt.Printf("  %s\n", r.Format(d))
	}
}

func cap5(rs []twoview.Rule) []twoview.Rule {
	if len(rs) > 5 {
		return rs[:5]
	}
	return rs
}
