// Multiview: the paper's future-work direction (§7) — more than two
// views. We build a three-view dataset (demographics, lifestyle, medical
// conditions for the same people), mine a translation table for every
// view pair, and print the structure matrix showing which views are
// actually related.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"twoview"
)

func main() {
	d, err := twoview.NewMultiDataset(
		[]string{"demographics", "lifestyle", "medical"},
		[][]string{
			{"age:young", "age:mid", "age:senior", "urban", "rural"},
			{"smoker", "runner", "vegetarian", "night-owl"},
			{"hypertension", "asthma", "allergy", "insomnia"},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Synthesize people: smoking is tied to hypertension and night owls
	// to insomnia (lifestyle ↔ medical), seniors tend to live rurally
	// (within demographics only — no cross-view rule should link it to
	// the other views).
	r := rand.New(rand.NewSource(2026))
	for i := 0; i < 500; i++ {
		var demo, life, med []int
		demo = append(demo, r.Intn(3)) // one age group
		if r.Intn(2) == 0 {
			demo = append(demo, 3) // urban
		} else {
			demo = append(demo, 4) // rural
		}
		if r.Intn(3) == 0 {
			life = append(life, 0) // smoker
			if r.Float64() < 0.85 {
				med = append(med, 0) // hypertension
			}
		}
		if r.Intn(4) == 0 {
			life = append(life, 3) // night owl
			if r.Float64() < 0.8 {
				med = append(med, 3) // insomnia
			}
		}
		if r.Intn(4) == 0 {
			life = append(life, 1+r.Intn(2)) // runner or vegetarian
		}
		if r.Intn(8) == 0 {
			med = append(med, 1+r.Intn(2)) // background asthma/allergy
		}
		if err := d.AddRow([][]int{demo, life, med}); err != nil {
			log.Fatal(err)
		}
	}

	results, err := twoview.MineAllPairs(context.Background(), d, twoview.MultiOptions{MinSupport: 5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("pairwise structure matrix (L%, lower = more shared structure):")
	m := twoview.StructureMatrix(d, results)
	fmt.Printf("%14s", "")
	for v := 0; v < d.Views(); v++ {
		fmt.Printf("%14s", d.ViewName(v))
	}
	fmt.Println()
	for i := 0; i < d.Views(); i++ {
		fmt.Printf("%14s", d.ViewName(i))
		for j := 0; j < d.Views(); j++ {
			if i == j {
				fmt.Printf("%14s", "-")
			} else {
				fmt.Printf("%14.1f", m[i][j])
			}
		}
		fmt.Println()
	}

	fmt.Println("\nrules per view pair:")
	for _, pr := range results {
		fmt.Printf("\n%s ↔ %s (%d rules):\n",
			d.ViewName(pr.I), d.ViewName(pr.J), pr.Result.Table.Size())
		for _, rs := range twoview.TopRules(pr.Data, pr.Result.Table, 3) {
			fmt.Printf("  %-45s supp=%-4d c+=%.2f\n", rs.Rule.Format(pr.Data), rs.Supp, rs.Conf)
		}
	}
}
